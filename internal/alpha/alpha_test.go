package alpha

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trips/internal/mem"
	"trips/internal/tir"
)

// run executes f on the baseline and returns final registers + result.
func run(t *testing.T, f *tir.Func, init map[tir.Reg]uint64, m *mem.Memory) ([]uint64, Result) {
	t.Helper()
	code, err := Flatten(f)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		m = mem.New()
	}
	mc := New(DefaultConfig(), code, f.NumRegs(), m)
	for r, v := range init {
		mc.SetReg(r, v)
	}
	res, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	mc.FlushCache()
	regs := make([]uint64, f.NumRegs())
	for i := range regs {
		regs[i] = mc.Reg(tir.Reg(i))
	}
	return regs, res
}

func goldenRun(t *testing.T, f *tir.Func, init map[tir.Reg]uint64, m *mem.Memory) []uint64 {
	t.Helper()
	if m == nil {
		m = mem.New()
	}
	regs := make([]uint64, f.NumRegs())
	for r, v := range init {
		regs[r] = v
	}
	if _, err := tir.Interp(f, m, regs, 10_000_000); err != nil {
		t.Fatal(err)
	}
	return regs
}

func sumLoop(t *testing.T, n int64) (*tir.Func, tir.Reg) {
	t.Helper()
	f := tir.NewFunc("sum")
	i := f.NewReg()
	sum := f.NewReg()
	entry := f.NewBB("entry")
	loop := f.NewBB("loop")
	done := f.NewBB("done")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: i, Imm: 0})
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: sum, Imm: 0})
	entry.Jump(loop)
	loop.Emit(tir.Inst{Op: tir.AddI, Dst: i, A: i, Imm: 1})
	loop.Emit(tir.Inst{Op: tir.Add, Dst: sum, A: sum, B: i})
	c := loop.OpI(f, tir.SetLTI, i, n)
	loop.Branch(c, loop, done)
	done.Ret()
	return f, sum
}

func TestSumLoop(t *testing.T) {
	f, sum := sumLoop(t, 100)
	regs, res := run(t, f, nil, nil)
	if regs[sum] != 5050 {
		t.Errorf("sum = %d, want 5050", regs[sum])
	}
	if res.IPC <= 0.5 {
		t.Errorf("IPC = %.2f; a 4-wide core should sustain more on this loop", res.IPC)
	}
	if res.Mispredicts == 0 {
		t.Error("loop exit should mispredict at least once")
	}
	if res.Mispredicts > 8 {
		t.Errorf("predictor never learned the loop: %d mispredicts", res.Mispredicts)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	f := tir.NewFunc("fwd")
	base := f.NewReg()
	v := f.NewReg()
	got := f.NewReg()
	b := f.NewBB("b")
	b.Emit(tir.Inst{Op: tir.ConstI, Dst: v, Imm: 0xabcdef})
	b.Store(base, 0, v, 8)
	b.Emit(tir.Inst{Op: tir.Load, Dst: got, A: base, Imm: 0, Width: 8})
	b.Ret()
	regs, _ := run(t, f, map[tir.Reg]uint64{base: 0x2000}, nil)
	if regs[got] != 0xabcdef {
		t.Errorf("forwarded load = %#x", regs[got])
	}
}

func TestMemoryResultsCommitted(t *testing.T) {
	// Store a vector, reload and sum; memory must hold the stores.
	f := tir.NewFunc("vec")
	base := f.NewReg()
	i := f.NewReg()
	s := f.NewReg()
	entry := f.NewBB("entry")
	loop := f.NewBB("loop")
	done := f.NewBB("done")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: i, Imm: 0})
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: s, Imm: 0})
	entry.Jump(loop)
	off := loop.OpI(f, tir.ShlI, i, 3)
	ad := loop.Op(f, tir.Add, base, off)
	sq := loop.Op(f, tir.Mul, i, i)
	loop.Store(ad, 0, sq, 8)
	v := loop.Load(f, ad, 0, 8, false)
	loop.Emit(tir.Inst{Op: tir.Add, Dst: s, A: s, B: v})
	loop.Emit(tir.Inst{Op: tir.AddI, Dst: i, A: i, Imm: 1})
	c := loop.OpI(f, tir.SetLTI, i, 20)
	loop.Branch(c, loop, done)
	done.Ret()
	m := mem.New()
	regs, _ := run(t, f, map[tir.Reg]uint64{base: 0x3000}, m)
	want := uint64(0)
	for k := 0; k < 20; k++ {
		want += uint64(k * k)
	}
	if regs[s] != want {
		t.Errorf("sum = %d, want %d", regs[s], want)
	}
	if got := m.Read(0x3000+19*8, 8, false); got != 361 {
		t.Errorf("mem[19] = %d, want 361", got)
	}
}

func TestMemPortLimitMatters(t *testing.T) {
	// A pure streaming loop: with 1 port it must be measurably slower than
	// with 4 — the L1-bandwidth effect the paper credits for vadd's 2x.
	mk := func() *tir.Func {
		f := tir.NewFunc("stream")
		base := f.NewReg()
		_ = base
		i := f.NewReg()
		s := f.NewReg()
		entry := f.NewBB("entry")
		loop := f.NewBB("loop")
		done := f.NewBB("done")
		entry.Emit(tir.Inst{Op: tir.ConstI, Dst: i, Imm: 0})
		entry.Emit(tir.Inst{Op: tir.ConstI, Dst: s, Imm: 0})
		// Independent accumulators keep the loop bandwidth-bound.
		accs := make([]tir.Reg, 8)
		for u := range accs {
			accs[u] = f.NewReg()
			entry.Emit(tir.Inst{Op: tir.ConstI, Dst: accs[u], Imm: 0})
		}
		entry.Jump(loop)
		for u := 0; u < 8; u++ {
			v := loop.Load(f, base, int64(u*64), 8, false)
			loop.Emit(tir.Inst{Op: tir.Add, Dst: accs[u], A: accs[u], B: v})
		}
		loop.Emit(tir.Inst{Op: tir.AddI, Dst: i, A: i, Imm: 1})
		c := loop.OpI(f, tir.SetLTI, i, 64)
		loop.Branch(c, loop, done)
		for u := 0; u < 8; u++ {
			done.Emit(tir.Inst{Op: tir.Add, Dst: s, A: s, B: accs[u]})
		}
		done.Ret()
		return f
	}
	cycles := map[int]int64{}
	for _, ports := range []int{1, 4} {
		f := mk()
		code, err := Flatten(f)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.MemPorts = ports
		mc := New(cfg, code, f.NumRegs(), nil)
		mc.SetReg(0, 0x4000)
		res, err := mc.Run()
		if err != nil {
			t.Fatal(err)
		}
		cycles[ports] = res.Cycles
	}
	if !(cycles[1] > cycles[4]*5/4) {
		t.Errorf("1-port run (%d cycles) should be measurably slower than 4-port (%d)", cycles[1], cycles[4])
	}
}

func TestQuickMatchesGolden(t *testing.T) {
	// Random structured programs must produce interpreter-identical
	// registers and memory.
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := tir.NewFunc("rand")
		a := f.NewReg()
		b := f.NewReg()
		base := f.NewReg()
		entry := f.NewBB("entry")
		loop := f.NewBB("loop")
		thenB := f.NewBB("then")
		elseB := f.NewBB("else")
		join := f.NewBB("join")
		done := f.NewBB("done")
		i := f.NewReg()
		s := f.NewReg()
		entry.Emit(tir.Inst{Op: tir.ConstI, Dst: i, Imm: 0})
		entry.Emit(tir.Inst{Op: tir.ConstI, Dst: s, Imm: int64(r.Intn(100))})
		entry.Jump(loop)
		x := loop.Op(f, tir.Add, s, a)
		y := loop.Op(f, tir.Xor, x, b)
		loop.Store(base, 0, y, 8)
		c := loop.OpI(f, tir.SetLTI, y, int64(r.Intn(2000)))
		loop.Branch(c, thenB, elseB)
		thenB.Emit(tir.Inst{Op: tir.AddI, Dst: s, A: s, Imm: 13})
		thenB.Jump(join)
		elseB.Emit(tir.Inst{Op: tir.MulI, Dst: s, A: s, Imm: 3})
		elseB.Jump(join)
		ld := join.Load(f, base, 0, 8, false)
		join.Emit(tir.Inst{Op: tir.Add, Dst: s, A: s, B: ld})
		join.Emit(tir.Inst{Op: tir.AndI, Dst: s, A: s, Imm: 0xffff})
		join.Emit(tir.Inst{Op: tir.AddI, Dst: i, A: i, Imm: 1})
		cc := join.OpI(f, tir.SetLTI, i, int64(5+r.Intn(30)))
		join.Branch(cc, loop, done)
		done.Ret()
		init := map[tir.Reg]uint64{a: uint64(r.Intn(500)), b: uint64(r.Intn(500)), base: 0x5000}
		gm := mem.New()
		want := goldenRun(t, f, init, gm)
		m := mem.New()
		got, _ := run(t, f, init, m)
		if got[s] != want[s] || got[i] != want[i] {
			t.Logf("seed %d: s=%d want %d, i=%d want %d", seed, got[s], want[s], got[i], want[i])
			return false
		}
		return m.Read(0x5000, 8, false) == gm.Read(0x5000, 8, false)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestROBWrapWithMispredicts is a regression test for dangling ROB tags:
// a data-dependent branchy loop long enough to wrap the 80-entry ROB many
// times, with values flowing through committed-and-reused slots.
func TestROBWrapWithMispredicts(t *testing.T) {
	f := tir.NewFunc("wrap")
	a := f.NewReg()
	s := f.NewReg()
	i := f.NewReg()
	entry := f.NewBB("entry")
	loop := f.NewBB("loop")
	odd := f.NewBB("odd")
	even := f.NewBB("even")
	join := f.NewBB("join")
	done := f.NewBB("done")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: i, Imm: 0})
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: s, Imm: 0})
	entry.Jump(loop)
	// A long dependence chain so producers retire while consumers wait.
	cur := s
	for k := 0; k < 12; k++ {
		cur = loop.Op(f, tir.Add, cur, a)
	}
	par := loop.OpI(f, tir.AndI, cur, 1)
	loop.Branch(par, odd, even)
	odd.Emit(tir.Inst{Op: tir.AddI, Dst: s, A: cur, Imm: 3})
	odd.Jump(join)
	even.Emit(tir.Inst{Op: tir.AddI, Dst: s, A: cur, Imm: 7})
	even.Jump(join)
	join.Emit(tir.Inst{Op: tir.AndI, Dst: s, A: s, Imm: 0xffff})
	join.Emit(tir.Inst{Op: tir.AddI, Dst: i, A: i, Imm: 1})
	c := join.OpI(f, tir.SetLTI, i, 400)
	join.Branch(c, loop, done)
	done.Ret()
	init := map[tir.Reg]uint64{a: 13}
	want := goldenRun(t, f, init, nil)
	got, res := run(t, f, init, nil)
	if got[s] != want[s] {
		t.Fatalf("s = %d, want %d (after %d cycles, %d mispredicts)", got[s], want[s], res.Cycles, res.Mispredicts)
	}
	if res.Committed < 400*15 {
		t.Errorf("committed only %d instructions", res.Committed)
	}
}
