module trips

go 1.22
