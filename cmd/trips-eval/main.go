// Command trips-eval regenerates every table and figure of "Distributed
// Microarchitectural Protocols in the TRIPS Prototype Processor"
// (MICRO 2006) from the simulator:
//
//	trips-eval -table1     tile specifications (paper Table 1)
//	trips-eval -table2     control and data networks (paper Table 2)
//	trips-eval -table3     network overheads + preliminary performance
//	trips-eval -fig1       instruction format encodings (paper Figure 1)
//	trips-eval -fig2       chip block diagram (paper Figure 2)
//	trips-eval -fig3       micronetworks and their roles (paper Figure 3)
//	trips-eval -fig5b      block completion/commit pipeline timeline
//	trips-eval -fig6       floorplan and area breakdown (paper Figure 6)
//	trips-eval -ablate     design-choice ablations (placement, OPN width,
//	                       dependence predictor)
//	trips-eval -all        everything
//
// Table 3 runs the full 21-benchmark suite on the TRIPS core (compiled and
// hand-optimized) and the Alpha-class baseline; restrict it with
// -bench name. Rows fan out across a worker pool (-workers, default
// GOMAXPROCS); simulated results are identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"expvar"

	"trips/internal/area"
	"trips/internal/eval"
	"trips/internal/isa"
	"trips/internal/mem"
	"trips/internal/micronet"
	"trips/internal/obs"
	"trips/internal/proc"
)

func main() {
	var (
		t1         = flag.Bool("table1", false, "print Table 1 (tile specifications)")
		t2         = flag.Bool("table2", false, "print Table 2 (control and data networks)")
		t3         = flag.Bool("table3", false, "run and print Table 3 (overheads and performance)")
		f1         = flag.Bool("fig1", false, "print Figure 1 (instruction formats)")
		f2         = flag.Bool("fig2", false, "print Figure 2 (chip block diagram)")
		f3         = flag.Bool("fig3", false, "print Figure 3 (micronetworks)")
		f4         = flag.Bool("fig4", false, "print Figure 4 (tile-level diagrams)")
		f5b        = flag.Bool("fig5b", false, "run and print Figure 5b (commit pipeline)")
		f6         = flag.Bool("fig6", false, "print Figure 6 (floorplan)")
		ablate     = flag.Bool("ablate", false, "run the design-choice ablations")
		all        = flag.Bool("all", false, "everything")
		bench      = flag.String("bench", "", "restrict -table3/-ablate to one benchmark")
		workers    = flag.Int("workers", 0, "worker pool size for -table3/-ablate (0 = GOMAXPROCS)")
		jsonOut    = flag.String("json", "", "write the -table3 report (rows + host throughput) to this file")
		hostStats  = flag.Bool("host", false, "print host throughput after -table3 (nondeterministic)")
		noFast     = flag.Bool("nofastpath", false, "run -table3 without quiescence-aware stepping (results must not change)")
		noWarp     = flag.Bool("nowarp", false, "run -table3 without clock-warping (results must not change)")
		noEvent    = flag.Bool("noeventdriven", false, "run -table3 without the per-tile event-driven doze overlay (results must not change)")
		useNUCA    = flag.Bool("nuca", false, "run -table3 TRIPS rows against the full secondary memory system instead of the perfect L2")
		seqStep    = flag.Bool("seq", false, "force sequential core/memory interleave for -nuca runs instead of bounded-lag stepping (results must not change)")
		parStride  = flag.Int64("par-stride", 0, "cap bounded-lag stride length in cycles (0 = auto horizon; results must not change)")
		flightDir  = flag.String("flight-dir", "", "arm the flight recorder on -table3 compiled-TRIPS runs; crash/limit dump bundles land in this directory (inspect with trips-debug)")
		debugAddr  = flag.String("debug-addr", "", "serve expvar, pprof and /metrics on this address (e.g. localhost:6060)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *parStride < 0 {
		fmt.Fprintf(os.Stderr, "trips-eval: -par-stride must be non-negative, got %d\n", *parStride)
		os.Exit(2)
	}
	if *seqStep && !*useNUCA {
		fmt.Fprintln(os.Stderr, "trips-eval: -seq selects the core/memory interleave for -nuca runs; pass -nuca as well")
		os.Exit(2)
	}
	if !(*t1 || *t2 || *t3 || *f1 || *f2 || *f3 || *f4 || *f5b || *f6 || *ablate || *all) {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *debugAddr != "" {
		expvar.Publish("eval_progress", expvar.Func(func() any {
			return map[string]int64{
				"rows_done":  eval.Progress.Rows.Load(),
				"sim_cycles": eval.Progress.SimCycles.Load(),
			}
		}))
		addr, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trips-eval: debug endpoint on http://%s/debug/vars\n", addr)
	}
	if *all {
		*t1, *t2, *t3, *f1, *f2, *f3, *f4, *f5b, *f6, *ablate = true, true, true, true, true, true, true, true, true, true
	}
	if *f1 {
		fig1()
	}
	if *f2 {
		fig2()
	}
	if *f3 {
		fig3()
	}
	if *f4 {
		fig4()
	}
	if *t1 {
		fmt.Println("== Table 1: TRIPS Tile Specifications ==")
		fmt.Println(area.FormatTable1())
	}
	if *t2 {
		fmt.Println("== Table 2: TRIPS Control and Data Networks ==")
		fmt.Println(area.FormatTable2())
	}
	if *f6 {
		fmt.Println("== Figure 6: TRIPS physical floorplan ==")
		fmt.Println(area.Floorplan())
		fmt.Printf("area overheads (Section 5.2): OPN ~%.0f%% of processor, OCN ~%.0f%% of chip, LSQs ~%.0f%% of processor (%.0f%% of each DT)\n\n",
			area.OPNPctProcessorArea, area.OCNPctChipArea, area.LSQPctProcessorArea, area.LSQPctOfDT)
	}
	if *f5b {
		fig5b()
	}
	if *t3 {
		table3(*bench, *workers, *jsonOut, *hostStats, eval.Stepping{NoFastPath: *noFast, NoWarp: *noWarp, NoEventDriven: *noEvent, UseNUCA: *useNUCA, SeqStep: *seqStep, ParStride: *parStride, FlightDir: *flightDir})
		if *flightDir != "" {
			fmt.Fprintf(os.Stderr, "trips-eval: flight recorder was armed; dump bundles (if any) are under %s\n", *flightDir)
		}
	}
	if *ablate {
		runAblations(*bench, *workers)
	}
}

func fig1() {
	fmt.Println("== Figure 1: TRIPS Instruction Formats ==")
	rows := []struct {
		name   string
		layout string
		in     isa.Inst
	}{
		{"G", "OPCODE[31:25] PR[24:23] XOP[22:18] T1[17:9] T0[8:0]", isa.Inst{Op: isa.ADD, T0: isa.ToLeft(5), T1: isa.ToRight(9)}},
		{"I", "OPCODE[31:25] PR[24:23] IMM[22:9] T0[8:0]", isa.Inst{Op: isa.ADDI, Imm: -4, T0: isa.ToLeft(3)}},
		{"L", "OPCODE[31:25] PR[24:23] LSID[22:18] IMM[17:9] T0[8:0]", isa.Inst{Op: isa.LW, LSID: 2, Imm: 8, T0: isa.ToLeft(7)}},
		{"S", "OPCODE[31:25] PR[24:23] LSID[22:18] IMM[17:9] 0[8:0]", isa.Inst{Op: isa.SW, LSID: 3, Imm: -16}},
		{"B", "OPCODE[31:25] PR[24:23] EXIT[22:20] OFFSET[19:0]", isa.Inst{Op: isa.BRO, Exit: 1, Offset: -64}},
		{"C", "OPCODE[31:25] CONST[24:9] T0[8:0]", isa.Inst{Op: isa.GENC, Imm: 0xbeef, T0: isa.ToRight(1)}},
	}
	for _, r := range rows {
		w, err := isa.EncodeInst(&r.in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  %s: %-52s  e.g. %-28s = %#08x\n", r.name, r.layout, r.in.String(), w)
	}
	fmt.Println("  R: V GR5 RT1[8:0] RT0[8:0]   (header read, 3 bytes packed)")
	fmt.Println("  W: V GR5                     (header write, 6 bits packed)")
	fmt.Println()
}

func fig2() {
	fmt.Println("== Figure 2: TRIPS prototype block diagram ==")
	fmt.Println(`
  Each processor core (2 per chip):          Secondary memory system:
    row 0:  GT  RT0 RT1 RT2 RT3                16 MTs (4-way 64KB banks),
    row 1:  IT1 DT0 ET0 ET1 ET2 ET3            24 NTs, on a 4x10 wormhole
    row 2:  IT2 DT1 ET4 ET5 ET6 ET7            OCN with 4 virtual channels
    row 3:  IT3 DT2 ET8 ET9 ET10 ET11          and 16-byte links.
    row 4:  IT4 DT3 ET12 ET13 ET14 ET15
    (IT0 holds header chunks; each IT        I/O clients on the OCN:
     feeds its own row over the GDN)           2 SDC, 2 DMA, C2C, EBC`)
	fmt.Println()
}

func fig3() {
	fmt.Println("== Figure 3: TRIPS micronetworks ==")
	for _, n := range micronet.Table2 {
		fmt.Printf("  %-4s %-26s %s\n", n.Abbrev, n.Name, roleOf(n.Abbrev))
	}
	fmt.Println()
}

func roleOf(abbrev string) string {
	switch abbrev {
	case "GDN":
		return "issues block fetch commands and dispatches instructions"
	case "OPN":
		return "transports all data operands (5x5 mesh)"
	case "GSN":
		return "signals block completion, refill and commit completion"
	case "GCN":
		return "issues block commit and block flush commands"
	case "GRN":
		return "broadcasts I-cache refill addresses to the ITs"
	case "DSN":
		return "shares store-arrival info among the DTs"
	case "ESN":
		return "tracks store completion in the L2 or memory"
	case "OCN":
		return "memory-system transport (4x10 mesh, 4 VCs)"
	}
	return ""
}

func fig4() {
	fmt.Println("== Figure 4: TRIPS tile-level diagrams (as implemented) ==")
	fmt.Println(`
  a) Global Control Tile (GT)            internal/proc/gt.go
     - block PCs and state for 8 in-flight blocks (1..4 SMT threads)
     - I-cache tag array (128 blocks) + I-TLB + refill engine (GRN/GSN)
     - next-block predictor: tournament local/gshare exit predictor plus
       BTB/CTB/RAS/branch-type target predictor   internal/predictor
     - fetch pipeline: 3 predict + 1 TLB/tag + 1 hit/miss + 8 dispatch
     - commit/flush control (GCN) and completion tracking (GSN, OPN)

  b) Instruction Tile (IT) x5            internal/proc/it.go
     - 2-way 16KB bank: one 128B chunk for each of 128 blocks
     - slave to the GT's tag array; refills its own chunk independently;
       refill completion daisy-chained northward on the GSN
     - feeds its own row: 4 instructions/cycle for 8 beats (GDN)

  c) Register Tile (RT) x4               internal/proc/rt.go
     - one 32-register architectural bank per SMT thread
     - read queue + write queue: 8 entries per in-flight block, forwarding
       register writes dynamically to later blocks' reads (renaming)
     - completion/commit-ack daisy chains on the GSN

  d) Execution Tile (ET) x16             internal/proc/et.go
     - 64 reservation stations (8 blocks x 8), two 64-bit operands + 1
       predicate bit each
     - single-issue; integer + FP units, fully pipelined except the
       24-cycle divide; same-ET local bypass for back-to-back issue
     - OPN router integration: remote wakeup costs 1 cycle per hop

  e) Data Tile (DT) x4                   internal/proc/dt.go + internal/lsq
     - 2-way 8KB L1 bank (lines interleaved across DTs at 64B)
     - replicated 256-entry LSQ with store-to-load forwarding
     - memory-side dependence predictor: 1024-entry bit vector, flash
       cleared every 10,000 blocks
     - MSHR: 16 requests over 4 outstanding lines
     - one-entry back-side coalescing write buffer
     - DSN client for distributed store-completion tracking`)
	fmt.Println()
}

// fig5b reproduces the commit-pipeline timeline: a chain of blocks whose
// completion, commit and acknowledgment phases overlap.
func fig5b() {
	fmt.Println("== Figure 5b: block completion / commit / acknowledgment pipeline ==")
	// A chain of eight blocks run twice: the first pass warms the I-cache
	// (each block cold-misses and refills over the GRN); the second pass
	// shows the steady-state pipelined protocol.
	var blocks []*isa.Block
	n := 8
	for i := 0; i < n; i++ {
		addr := uint64(0x10000 + i*0x100)
		b := &isa.Block{Addr: addr, Name: "b"}
		b.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToLeft(0)}
		b.Writes[0] = isa.WriteInst{Valid: true, GR: 8}
		if i < n-1 {
			b.Insts = []isa.Inst{
				{Op: isa.ADDI, Imm: 1, T0: isa.ToWrite(0)},
				{Op: isa.BRO, Exit: 0, Offset: 2},
			}
		} else {
			b.Reads[0].RT1 = isa.ToLeft(1)
			back := int32(-(int64(addr-0x10000) / isa.ChunkBytes))
			halt := int32(-(int64(addr) / isa.ChunkBytes))
			b.Insts = []isa.Inst{
				{Op: isa.ADDI, Imm: 1, T0: isa.ToWrite(0)},
				{Op: isa.TLTI, Imm: 9, T0: isa.ToLeft(4)},
				{Op: isa.BRO, Pred: isa.PredOnTrue, Exit: 1, Offset: back},
				{Op: isa.BRO, Pred: isa.PredOnFalse, Exit: 0, Offset: halt},
				{Op: isa.MOV, T0: isa.ToPred(2), T1: isa.ToPred(3)},
			}
		}
		blocks = append(blocks, b)
	}
	prog, err := proc.NewProgram(blocks[0].Addr, blocks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m := mem.New()
	prog.Image(m)
	core, err := proc.NewCore(proc.Config{
		Program:        prog,
		Mem:            proc.NewFixedLatencyMem(m, 20),
		RecordTimeline: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := core.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("  block   dispatch   complete   commit-cmd   acked     (steady-state pass)")
	tl := core.Timeline
	if len(tl) > 8 {
		tl = tl[len(tl)-8:]
	}
	for _, bt := range tl {
		fmt.Printf("  %5d %10d %10d %12d %7d\n", bt.Seq, bt.Dispatch, bt.Complete, bt.CommitCmd, bt.Acked)
	}
	fmt.Println("  (pipelined commit: a block's commit command may issue before older")
	fmt.Println("   blocks' acks return — compare commit-cmd and acked columns)")
	fmt.Println()
}

func table3(only string, workers int, jsonOut string, hostStats bool, step eval.Stepping) {
	fmt.Println("== Table 3: network overheads and preliminary performance ==")
	fmt.Printf("%-12s | %7s %8s %8s %7s %9s %7s %6s | %7s %7s | %6s %6s %6s\n",
		"Benchmark", "IFetch", "OPNHops", "OPNCont", "Fanout", "BlkCompl", "Commit", "Other",
		"Spd-TCC", "SpdHand", "IPCtcc", "IPChnd", "IPCa")
	var rep *eval.Table3Report
	var err error
	if only != "" {
		rep, err = eval.Table3Rows([]string{only}, workers, step)
	} else {
		rep, err = eval.Table3All(workers, step)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, row := range rep.Rows {
		fmt.Printf("%-12s | %6.2f%% %7.2f%% %7.2f%% %6.2f%% %8.2f%% %6.2f%% %5.1f%% | %7.2f %7.2f | %6.2f %6.2f %6.2f\n",
			row.Name, row.IFetch, row.OPNHops, row.OPNCont, row.Fanout, row.Complete, row.Commit, row.Other,
			row.SpeedupTCC, row.SpeedupHand, row.IPCTCC, row.IPCHand, row.IPCAlpha)
	}
	if hostStats {
		fmt.Printf("host: %d workers, %d sim-cycles in %.1f s, %.0f sim-cycles/sec, %.0f ns/sim-cycle\n",
			rep.Workers, rep.TotalSimCycles, float64(rep.TotalWallNS)/1e9,
			rep.SimCyclesPerSec, float64(rep.TotalWallNS)/float64(rep.TotalSimCycles))
	}
	if jsonOut != "" {
		if err := eval.WriteBenchJSON(jsonOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Println()
}

func runAblations(only string, workers int) {
	fmt.Println("== Ablations (paper Sections 5.3 and 7) ==")
	names := []string{"vadd", "conv", "dct8x8", "matrix"}
	if only != "" {
		names = []string{only}
	}
	fmt.Printf("%-10s | %10s %10s | %10s %10s | %10s %10s\n", "bench",
		"naive", "greedy", "1xOPN", "2xOPN", "aggr-ld", "conserv")
	rows, err := eval.Ablations(names, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, r := range rows {
		fmt.Printf("%-10s | %10d %10d | %10d %10d | %10d %10d\n", r.Name,
			r.Naive, r.Greedy, r.OPN1, r.OPN2, r.Aggressive, r.Conservative)
	}
	fmt.Println(strings.TrimSpace(`
  naive/greedy:   instruction placement (Section 7: scheduling to reduce hops)
  1x/2x OPN:      operand network bandwidth (Section 7: proposed extension)
  aggr/conserv:   dependence predictor aggressive loads vs always-stall`))
	fmt.Println()
}
