// Command tsim is the cycle-level TRIPS processor simulator (the analogue
// of the paper's tsim-proc, Section 5.4). It runs a named benchmark from
// the built-in suite on the distributed TRIPS core and reports cycles,
// IPC, protocol statistics and the critical-path breakdown.
//
//	tsim -list
//	tsim -bench vadd [-mode hand|tcc] [-placement naive|greedy]
//	     [-opn 1|2] [-conservative] [-nuca] [-alpha] [-golden]
//	     [-trace out.json] [-debug-addr :6060]
//	     [-seq] [-par-stride n]
//	     [-checkpoint-at n -checkpoint-out f] [-restore f]
//	     [-sample-interval n [-sample-warmup n] [-sample-n k]]
//	     [-flight [-flight-dir d] [-dump-on trig] [-flight-depth k] [-flight-interval n]]
//	     [-max-cycles n] [-lag-deadline-pad n] [-lag-horizon-override n]
//	     [-host] [-nofastpath] [-nowarp] [-noeventdriven] [-cpuprofile f] [-memprofile f]
//
// -checkpoint-at/-checkpoint-out frame the complete machine state at the
// first block-commit boundary after the given cycle; -restore resumes such a
// file and runs to completion with results bit-identical to the
// uninterrupted run. -sample-interval fans SimPoint-style interval replays
// across a worker pool. -flight arms the flight recorder: a rolling ring of
// commit-boundary checkpoints plus a bounded trace window, dumped as a
// self-describing bundle on panic, cycle-limit overrun or the -dump-on
// trigger (rollback, end, block=N, cycle=N) for trips-debug to replay. All
// of these disable the critical-path analyzer (its event graph cannot be
// serialized). -lag-deadline-pad / -lag-horizon-override inject bounded-lag
// timing faults to exercise the recorder's violation paths.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"trips/internal/critpath"
	"trips/internal/eval"
	"trips/internal/obs"
	"trips/internal/tcc"
	"trips/internal/workloads"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available benchmarks")
		bench      = flag.String("bench", "", "benchmark to run")
		mode       = flag.String("mode", "hand", "compilation mode: hand or tcc")
		placement  = flag.String("placement", "", "instruction placement: naive or greedy (default per mode)")
		opn        = flag.Int("opn", 1, "operand network channels (1 or 2)")
		conserv    = flag.Bool("conservative", false, "disable aggressive load issue")
		useNUCA    = flag.Bool("nuca", false, "use the NUCA secondary memory system instead of the perfect L2")
		traceOut   = flag.String("trace", "", "record a protocol trace and write Chrome/Perfetto JSON to this file")
		debugAddr  = flag.String("debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
		alphaRun   = flag.Bool("alpha", false, "also run the Alpha-class baseline")
		goldenRun  = flag.Bool("golden", false, "also run the golden interpreter")
		stats      = flag.Bool("stats", false, "print per-tile statistics")
		host       = flag.Bool("host", false, "print host throughput (sim-cycles/sec; nondeterministic)")
		noFast     = flag.Bool("nofastpath", false, "disable quiescence-aware stepping (results must not change)")
		noWarp     = flag.Bool("nowarp", false, "disable clock-warping over quiescent stretches (results must not change)")
		noEvent    = flag.Bool("noeventdriven", false, "disable the per-tile event-driven doze overlay (results must not change)")
		seqStep    = flag.Bool("seq", false, "force sequential core/memory interleave for -nuca runs instead of bounded-lag stepping (results must not change)")
		parStride  = flag.Int64("par-stride", 0, "cap bounded-lag stride length in cycles (0 = auto horizon; results must not change)")
		ckptAt     = flag.Int64("checkpoint-at", 0, "checkpoint at the first block commit after this cycle (requires -checkpoint-out)")
		ckptOut    = flag.String("checkpoint-out", "", "write the checkpoint to this file (requires -checkpoint-at)")
		restore    = flag.String("restore", "", "resume from this checkpoint file instead of starting at the entry block")
		sampleInt  = flag.Int64("sample-interval", 0, "SimPoint-style sampling: interval length in cycles (0 = off)")
		sampleWarm = flag.Int64("sample-warmup", 0, "SimPoint-style sampling: cycles before the first sampled interval")
		sampleN    = flag.Int("sample-n", 8, "SimPoint-style sampling: maximum number of intervals")
		flightOn   = flag.Bool("flight", false, "arm the flight recorder: rolling checkpoints + crash-dump trace windows (see trips-debug)")
		flightDir  = flag.String("flight-dir", "flight-dumps", "directory receiving flight-recorder dump bundles")
		flightDep  = flag.Int("flight-depth", 0, "flight recorder: rolling checkpoint ring depth (0 = default)")
		flightInt  = flag.Int64("flight-interval", 0, "flight recorder: cycles between rolling checkpoints (0 = default)")
		dumpOn     = flag.String("dump-on", "", "flight recorder explicit trigger: rollback, end, block=N, or cycle=N (requires -flight)")
		maxCycles  = flag.Int64("max-cycles", 0, "cap the simulated run length in cycles (0 = default 200M)")
		lagPad     = flag.Int64("lag-deadline-pad", 0, "fault injection: pad bounded-lag response deadlines by this many cycles (diagnostics; overruns panic)")
		lagHorizon = flag.Int64("lag-horizon-override", 0, "fault injection: force this bounded-lag stride horizon (diagnostics; overruns panic)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *opn != 1 && *opn != 2 {
		fmt.Fprintf(os.Stderr, "tsim: -opn must be 1 or 2, got %d\n", *opn)
		os.Exit(2)
	}
	if *parStride < 0 {
		fmt.Fprintf(os.Stderr, "tsim: -par-stride must be non-negative, got %d\n", *parStride)
		os.Exit(2)
	}
	if *seqStep && !*useNUCA {
		fmt.Fprintln(os.Stderr, "tsim: -seq selects the core/memory interleave for -nuca runs; pass -nuca as well")
		os.Exit(2)
	}
	if *ckptAt < 0 {
		fmt.Fprintf(os.Stderr, "tsim: -checkpoint-at must be positive, got %d\n", *ckptAt)
		os.Exit(2)
	}
	if (*ckptAt > 0) != (*ckptOut != "") {
		fmt.Fprintln(os.Stderr, "tsim: -checkpoint-at and -checkpoint-out must be used together")
		os.Exit(2)
	}
	if *sampleInt < 0 || *sampleWarm < 0 || *sampleN <= 0 {
		fmt.Fprintln(os.Stderr, "tsim: -sample-interval and -sample-warmup must be non-negative, -sample-n positive")
		os.Exit(2)
	}
	if *sampleInt > 0 && (*ckptOut != "" || *restore != "") {
		fmt.Fprintln(os.Stderr, "tsim: -sample-interval cannot be combined with -checkpoint-out or -restore")
		os.Exit(2)
	}
	if *dumpOn != "" && !*flightOn {
		fmt.Fprintln(os.Stderr, "tsim: -dump-on arms a flight-recorder trigger; pass -flight as well")
		os.Exit(2)
	}
	if *flightOn && (*ckptOut != "" || *sampleInt > 0) {
		fmt.Fprintln(os.Stderr, "tsim: -flight cannot be combined with -checkpoint-out or -sample-interval (both own the commit hook)")
		os.Exit(2)
	}
	if *maxCycles < 0 || *lagPad < 0 || *lagHorizon < 0 {
		fmt.Fprintln(os.Stderr, "tsim: -max-cycles, -lag-deadline-pad and -lag-horizon-override must be non-negative")
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		fmt.Printf("%-12s %s\n", "benchmark", "class")
		for _, w := range workloads.All() {
			fmt.Printf("%-12s %s\n", w.Name, w.Class)
		}
		return
	}
	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	w, err := workloads.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The critical-path analyzer builds an event graph that cannot be
	// serialized, so checkpoint, restore, sampling and the flight recorder
	// all run without it.
	crit := *ckptOut == "" && *restore == "" && *sampleInt == 0 && !*flightOn
	opt := eval.TRIPSOptions{TrackCritPath: crit, OPNChannels: *opn, ConservativeLoads: *conserv, UseNUCA: *useNUCA, NoFastPath: *noFast, NoWarp: *noWarp, NoEventDriven: *noEvent, SeqStep: *seqStep, ParStride: *parStride, MaxCycles: *maxCycles, LagHorizonOverride: *lagHorizon, LagDeadlinePad: *lagPad}
	var tracer *obs.Tracer
	var sampler *obs.Sampler
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
		opt.Trace = tracer
	}
	if *traceOut != "" || *stats || *flightOn {
		sampler = obs.NewSampler(0)
		opt.Metrics = sampler
	}
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tsim: debug endpoint on http://%s/debug/vars\n", addr)
		if sampler != nil {
			obs.PublishSampler("tsim", sampler)
		}
	}
	hand := true
	switch *mode {
	case "hand":
		opt.Mode = tcc.Hand
	case "tcc":
		opt.Mode = tcc.Compiled
		hand = false
	default:
		fmt.Fprintf(os.Stderr, "tsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	switch *placement {
	case "":
	case "naive":
		opt.Placement = tcc.PlaceNaive
	case "greedy":
		opt.Placement = tcc.PlaceGreedy
	default:
		fmt.Fprintf(os.Stderr, "tsim: unknown placement %q\n", *placement)
		os.Exit(2)
	}

	if *flightOn {
		opt.Flight = &eval.FlightOptions{
			Dir:      *flightDir,
			Depth:    *flightDep,
			Interval: *flightInt,
			DumpOn:   *dumpOn,
			Tool:     "tsim",
			Bench:    w.Name,
			Hand:     hand,
		}
	}

	spec := w.Build(hand)

	if *sampleInt > 0 {
		runSampled(w, spec, opt, *sampleWarm, *sampleInt, *sampleN, *mode)
		return
	}

	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		opt.RestoreFrom = f
	}
	var ckptFile *os.File
	if *ckptOut != "" {
		f, err := os.Create(*ckptOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ckptFile = f
		opt.CheckpointAt = *ckptAt
		opt.CheckpointTo = f
	}

	t0 := time.Now()
	r, err := eval.RunTRIPS(spec, opt)
	wall := time.Since(t0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if *flightOn {
			fmt.Fprintf(os.Stderr, "tsim: flight-recorder dump bundles (if any) are under %s; inspect with trips-debug\n", *flightDir)
		}
		os.Exit(1)
	}
	if ckptFile != nil {
		if err := ckptFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("%s (%s, %s mode):\n", w.Name, w.Class, *mode)
	fmt.Printf("  cycles            %d\n", r.Cycles)
	fmt.Printf("  committed blocks  %d (avg %.1f useful insts/block)\n", r.Blocks, r.BlockSize)
	fmt.Printf("  committed insts   %d\n", r.Insts)
	fmt.Printf("  IPC               %.3f\n", r.IPC)
	fmt.Printf("  flushes           %d\n", r.Flushes)
	if crit {
		fmt.Println("  critical path:")
		for c := critpath.Cat(0); c < critpath.NumCats; c++ {
			fmt.Printf("    %-15s %6.2f%%\n", c.String(), r.Crit.Percent(c))
		}
	}
	for _, out := range spec.Outputs {
		fmt.Printf("  output r%d = %d\n", out, r.Regs[out])
	}
	if ckptFile != nil {
		fmt.Printf("  checkpoint: wrote %s (armed at cycle %d)\n", *ckptOut, *ckptAt)
	}
	if *restore != "" {
		fmt.Printf("  restored from %s\n", *restore)
	}
	for _, d := range r.FlightDumps {
		fmt.Printf("  flight dump: %s (inspect with trips-debug info %s)\n", d, d)
	}
	if *stats {
		fmt.Print(r.Stats.String())
		if r.NUCA != nil {
			fmt.Println(r.NUCA.String())
		}
		if sampler != nil {
			fmt.Print(sampler.Summary())
		}
	}
	if tracer != nil {
		if err := obs.WriteChromeFile(*traceOut, tracer, sampler); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  trace: %d events (%d dropped) -> %s\n", tracer.Total(), tracer.Dropped(), *traceOut)
	}
	if *host {
		fmt.Printf("  host: %.1f ms wall, %.0f sim-cycles/sec, %.0f ns/sim-cycle\n",
			float64(wall.Nanoseconds())/1e6,
			float64(r.Cycles)/wall.Seconds(),
			float64(wall.Nanoseconds())/float64(r.Cycles))
		fmt.Printf("  warp: %d jumps covering %d of %d sim-cycles (%.2f%%)\n",
			r.Warps, r.WarpedCycles, r.Cycles, 100*float64(r.WarpedCycles)/float64(r.Cycles))
		if r.SteppedCycles > 0 {
			total := r.TileTicks + r.TileSkips
			fmt.Printf("  tiles: %d of %d tile-ticks dozed over %d stepped cycles (%.2f%% skip coverage)\n",
				r.TileSkips, total, r.SteppedCycles, 100*float64(r.TileSkips)/float64(total))
		}
		if r.Lag != nil {
			fmt.Print(r.Lag.Summary())
		}
	}

	if *goldenRun {
		regs, _, ir, err := eval.RunGolden(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("golden: %d dynamic TIR insts, %d blocks\n", ir.DynInsts, ir.DynBlocks)
		for _, out := range spec.Outputs {
			match := "ok"
			if regs[out] != r.Regs[out] {
				match = "MISMATCH"
			}
			fmt.Printf("  r%d = %d  %s\n", out, regs[out], match)
		}
	}
	if *alphaRun {
		ar, err := eval.RunAlpha(w.Build(false))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("alpha: %d cycles, IPC %.3f, speedup(TRIPS/alpha) %.2f\n",
			ar.Cycles, ar.IPC, float64(ar.Cycles)/float64(r.Cycles))
	}
}

// runSampled runs the SimPoint-style sampled mode: one profiling pass that
// drops checkpoints at commit boundaries, then parallel interval replays.
func runSampled(w workloads.Workload, spec *workloads.Spec, opt eval.TRIPSOptions, warmup, interval int64, n int, mode string) {
	t0 := time.Now()
	sr, err := eval.RunSampled(spec, opt, warmup, interval, n, 0)
	wall := time.Since(t0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r := sr.Full
	fmt.Printf("%s (%s, %s mode, sampled):\n", w.Name, w.Class, mode)
	fmt.Printf("  cycles            %d\n", r.Cycles)
	fmt.Printf("  committed insts   %d\n", r.Insts)
	fmt.Printf("  IPC               %.3f\n", r.IPC)
	fmt.Printf("  sampling          warmup %d, interval %d, %d checkpoints (%d payload bytes)\n",
		sr.Warmup, sr.Interval, len(sr.Samples), sr.CkptBytes)
	if len(sr.Samples) > 0 {
		fmt.Printf("  %8s %10s %10s %10s %8s\n", "interval", "start", "end", "insts", "IPC")
		for _, s := range sr.Samples {
			fmt.Printf("  %8d %10d %10d %10d %8.3f\n", s.Index, s.StartCycle, s.EndCycle, s.Insts, s.IPC)
		}
	}
	fmt.Printf("  host: %.1f ms wall (profiling pass + parallel replays)\n", float64(wall.Nanoseconds())/1e6)
}
