// Command trips-asm assembles TRIPS assembly (.tasl) into binary block
// images, disassembles them back, or runs them directly on the simulator.
//
//	trips-asm file.tasl                 assemble; report blocks and bytes
//	trips-asm -dis file.tasl            assemble then disassemble (round trip)
//	trips-asm -run file.tasl            assemble and execute on the core
//	trips-asm -run -reg 4=10 file.tasl  ... with r4 preset to 10
//
// The TASL syntax is documented in internal/tasm.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"trips/internal/isa"
	"trips/internal/mem"
	"trips/internal/proc"
	"trips/internal/tasm"
)

type regFlags map[int]uint64

func (r regFlags) String() string { return fmt.Sprint(map[int]uint64(r)) }
func (r regFlags) Set(s string) error {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want <reg>=<value>")
	}
	reg, err := strconv.Atoi(parts[0])
	if err != nil {
		return err
	}
	val, err := strconv.ParseUint(parts[1], 0, 64)
	if err != nil {
		return err
	}
	r[reg] = val
	return nil
}

func main() {
	regs := regFlags{}
	dis := flag.Bool("dis", false, "disassemble after assembling")
	run := flag.Bool("run", false, "execute the program on the TRIPS core")
	flag.Var(regs, "reg", "initial register, e.g. -reg 4=10 (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := tasm.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *dis {
		fmt.Print(tasm.Disassemble(prog))
		return
	}
	if !*run {
		total := 0
		for _, addr := range prog.Addrs() {
			b, _ := prog.Block(addr)
			n := (1 + b.NumBodyChunks()) * isa.ChunkBytes
			total += n
			fmt.Printf("block %-16s @%#-10x %2d chunks  %4d bytes\n", b.Name, addr, 1+b.NumBodyChunks(), n)
		}
		fmt.Printf("%d blocks, %d bytes, entry %#x\n", prog.NumBlocks(), total, prog.Entry)
		return
	}
	m := mem.New()
	if err := prog.Image(m); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	core, err := proc.NewCore(proc.Config{Program: prog, Mem: proc.NewFixedLatencyMem(m, 20)})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for r, v := range regs {
		core.SetRegister(0, r, v)
	}
	res, err := core.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	core.FlushCaches()
	fmt.Printf("halted after %d cycles, %d blocks committed, IPC %.2f\n",
		res.Cycles, res.CommittedBlocks, res.IPC)
	for r := 0; r < isa.NumArchRegs; r++ {
		if v := core.Register(0, r); v != 0 {
			fmt.Printf("  r%-3d = %d (%#x)\n", r, v, v)
		}
	}
}
