// Command trips-debug is the time-travel debugger for flight-recorder dump
// bundles. A bundle (written by tsim -flight or any RunTRIPS caller with the
// recorder armed) carries the nearest-prior machine checkpoint, the trace
// window leading up to the trigger, and the workload/config identity — so
// the crash neighborhood of a run that executed with no tracing at all can
// be re-simulated deterministically under full observability.
//
//	trips-debug info   <bundle-dir>
//	trips-debug replay <bundle-dir> [-to-cycle n] [-to-block n]
//	           [-from-start] [-critpath] [-trace out.json] [-events out.json]
//	trips-debug diff   <a> <b>   (bundle dirs or window .events.json files)
//
// replay restores the bundled checkpoint into a freshly built machine and
// re-runs it to the window of interest; -trace exports the replayed window
// as a Chrome/Perfetto timeline and -events as a window file diff can
// consume. -from-start re-simulates from the entry block instead (required
// for -critpath: the critical-path event graph cannot be checkpointed; the
// replayed window is bit-identical either way, critpath tags aside).
//
// diff canonicalizes two windows (intra-cycle emission order and message
// trace ids are host artifacts, not protocol observables) and localizes the
// first divergent protocol event.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"trips/internal/eval"
	"trips/internal/flight"
	"trips/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "info":
		cmdInfo(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "trips-debug: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  trips-debug info   <bundle-dir>
  trips-debug replay <bundle-dir> [-to-cycle n] [-to-block n] [-from-start] [-critpath] [-trace out.json] [-events out.json]
  trips-debug diff   <a> <b>   (bundle dirs or window .events.json files)`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trips-debug:", err)
	os.Exit(1)
}

// parseArgs accepts the subcommand's positional paths either before or after
// its flags (flag.Parse alone would stop at the first path), returning the
// positionals after flag parsing.
func parseArgs(fs *flag.FlagSet, args []string, npos int) []string {
	var pos []string
	for len(args) > 0 && len(pos) < npos && !strings.HasPrefix(args[0], "-") {
		pos = append(pos, args[0])
		args = args[1:]
	}
	fs.Parse(args)
	pos = append(pos, fs.Args()...)
	if len(pos) != npos {
		usage()
		os.Exit(2)
	}
	return pos
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	pos := parseArgs(fs, args, 1)
	b, err := flight.ReadBundle(pos[0])
	if err != nil {
		fatal(err)
	}
	m := b.Manifest
	fmt.Printf("bundle %s\n", b.Dir)
	fmt.Printf("  tool        %s\n", m.Tool)
	fmt.Printf("  trigger     %s\n", m.Trigger)
	if m.Reason != "" {
		fmt.Printf("  reason      %s\n", m.Reason)
	}
	fmt.Printf("  dump cycle  %d\n", m.DumpCycle)
	if m.Checkpoint != nil {
		fmt.Printf("  checkpoint  %s: cycle %d, %d payload bytes\n", m.Checkpoint.File, m.Checkpoint.Cycle, m.Checkpoint.Bytes)
	} else {
		fmt.Printf("  checkpoint  none (trigger fired before the first rolling capture)\n")
	}
	for _, w := range m.Windows {
		fmt.Printf("  window      %s: %d events, cycles %d..%d (%d overwritten)\n",
			w.Name, w.Events, w.FirstCycle, w.LastCycle, w.Dropped)
	}
	if len(m.Meta) > 0 {
		fmt.Printf("  machine:\n")
		for _, k := range sortedKeys(m.Meta) {
			fmt.Printf("    %-14s %s\n", k, m.Meta[k])
		}
	}
	if len(m.Counters) > 0 {
		fmt.Printf("  counters:\n")
		ks := make([]string, 0, len(m.Counters))
		for k := range m.Counters {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			fmt.Printf("    %-26s %d\n", k, m.Counters[k])
		}
	}
	if m.ContentHash != "" {
		fmt.Printf("  content hash %s\n", m.ContentHash)
	}
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		toCycle   = fs.Int64("to-cycle", 0, "stop the replay at this cycle (0 = run to completion)")
		toBlock   = fs.Uint64("to-block", 0, "stop once this many blocks have committed (0 = no block bound)")
		fromStart = fs.Bool("from-start", false, "re-simulate from the entry block instead of restoring the checkpoint")
		critp     = fs.Bool("critpath", false, "tag replayed events with critical-path categories (requires -from-start)")
		traceOut  = fs.String("trace", "", "write the replayed window as Chrome/Perfetto JSON to this file")
		eventsOut = fs.String("events", "", "write the replayed window as a diff-able .events.json file")
		tracerCap = fs.Int("tracer-cap", 0, "replay tracer ring capacity in events (0 = default)")
	)
	pos := parseArgs(fs, args, 1)
	b, err := flight.ReadBundle(pos[0])
	if err != nil {
		fatal(err)
	}
	res, err := eval.ReplayBundle(b, eval.ReplayOptions{
		ToCycle:       *toCycle,
		ToBlock:       *toBlock,
		TracerCap:     *tracerCap,
		FromStart:     *fromStart,
		TrackCritPath: *critp,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %s (%s)\n", b.Manifest.Meta["bench"], b.Dir)
	if *fromStart {
		fmt.Printf("  from        entry block (full re-simulation)\n")
	} else {
		fmt.Printf("  restored at cycle %d\n", res.RestoredAt)
	}
	fmt.Printf("  stopped at  cycle %d (%d blocks, %d insts committed)\n", res.Cycles, res.Blocks, res.Insts)
	fmt.Printf("  window      %d events\n", len(res.Events))
	if *eventsOut != "" {
		if err := flight.WriteEvents(*eventsOut, "replay", res.Events); err != nil {
			fatal(err)
		}
		fmt.Printf("  events: -> %s\n", *eventsOut)
	}
	if *traceOut != "" {
		if err := obs.WriteChromeFile(*traceOut, res.Tracer, nil); err != nil {
			fatal(err)
		}
		fmt.Printf("  trace: %d events (%d dropped) -> %s\n", res.Tracer.Total(), res.Tracer.Dropped(), *traceOut)
	}
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	var (
		from   = fs.Int64("from", 0, "compare only events at or after this cycle")
		window = fs.String("window", "", "window name to load from bundle dirs (default: the sole window)")
	)
	pos := parseArgs(fs, args, 2)
	a, err := loadWindow(pos[0], *window)
	if err != nil {
		fatal(err)
	}
	b, err := loadWindow(pos[1], *window)
	if err != nil {
		fatal(err)
	}
	if *from > 0 {
		a = flight.WindowFrom(a, *from)
		b = flight.WindowFrom(b, *from)
	}
	fmt.Printf("a: %s (%d events)\n", pos[0], len(a))
	fmt.Printf("b: %s (%d events)\n", pos[1], len(b))
	if d := flight.Compare(a, b); d != nil {
		fmt.Printf("windows DIVERGE at %s\n", d.Reason)
		os.Exit(1)
	}
	fmt.Println("windows are bit-identical (after canonicalization)")
}

// loadWindow reads events from a bundle directory or a .events.json file.
func loadWindow(path, name string) ([]obs.Event, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		b, err := flight.ReadBundle(path)
		if err != nil {
			return nil, err
		}
		return b.Window(name)
	}
	return flight.ReadEvents(path)
}

func sortedKeys(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
