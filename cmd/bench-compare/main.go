// bench-compare diffs two benchmark baselines (see scripts/bench.sh).
//
//	bench-compare baseline.json fresh.json        Table 3 baselines
//	bench-compare -chip baseline.json fresh.json  chip-stepping baselines
//
// Simulated cycle counts (CyclesHand, CyclesTCC, CyclesAlpha per workload in
// Table 3 mode; the per-variant cycle column in chip mode) are
// deterministic: any drift between the two files — including a row appearing
// or disappearing — is a regression and exits nonzero. Host throughput (wall
// time, ns per op, speedup ratios) varies by machine and load, so those
// deltas are reported but never fail the run.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"trips/internal/eval"
)

type row struct {
	Name        string
	CyclesHand  int64
	CyclesTCC   int64
	CyclesAlpha int64
}

type host struct {
	Workload         string  `json:"workload"`
	SimCycles        int64   `json:"sim_cycles"`
	WallNS           int64   `json:"wall_ns"`
	HostNSPerSimCyc  float64 `json:"host_ns_per_sim_cycle"`
	SimCyclesPerSec_ float64 `json:"sim_cycles_per_sec"`
}

type baseline struct {
	Rows            []row   `json:"rows"`
	Host            []host  `json:"host"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

func load(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-compare:", err)
	os.Exit(2)
}

func main() {
	args := os.Args[1:]
	chipMode := false
	if len(args) > 0 && args[0] == "-chip" {
		chipMode = true
		args = args[1:]
	}
	if len(args) != 2 {
		fmt.Fprintf(os.Stderr, "usage: %s [-chip] baseline.json fresh.json\n", os.Args[0])
		os.Exit(2)
	}
	if chipMode {
		compareChip(args[0], args[1])
		return
	}
	compareTable3(args[0], args[1])
}

// compareChip diffs two ChipBenchReport files: cycle drift per
// (bench, variant) cell fails, host ns/op and speedups are informational.
func compareChip(basePath, freshPath string) {
	var base, fresh eval.ChipBenchReport
	if err := load(basePath, &base); err != nil {
		fatal(err)
	}
	if err := load(freshPath, &fresh); err != nil {
		fatal(err)
	}
	key := func(r eval.ChipBenchRow) string { return r.Bench + "/" + r.Variant }
	baseRows := make(map[string]eval.ChipBenchRow, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[key(r)] = r
	}
	freshRows := make(map[string]eval.ChipBenchRow, len(fresh.Rows))
	for _, r := range fresh.Rows {
		freshRows[key(r)] = r
	}
	var names []string
	for n := range baseRows {
		names = append(names, n)
	}
	for n := range freshRows {
		if _, ok := baseRows[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	drift := 0
	for _, n := range names {
		b, inBase := baseRows[n]
		f, inFresh := freshRows[n]
		switch {
		case !inBase:
			fmt.Printf("DRIFT %-32s only in fresh run\n", n)
			drift++
		case !inFresh:
			fmt.Printf("DRIFT %-32s missing from fresh run\n", n)
			drift++
		case b.Cycles != f.Cycles:
			fmt.Printf("DRIFT %-32s cycles %d -> %d\n", n, b.Cycles, f.Cycles)
			drift++
		}
	}
	if drift == 0 {
		fmt.Printf("simulated cycles: %d chip-bench cells identical\n", len(names))
	}

	// Pairing audit: every cell is half of a seq/lag A/B pair, so an unpaired
	// row means a partial bench run (interrupted filter, crashed variant). A
	// partial fresh run must not pass as clean, and a partial baseline must
	// not be silently accepted as the thing future runs are compared against.
	pairErrs := 0
	union := append(append([]eval.ChipBenchRow{}, base.Rows...), fresh.Rows...)
	files := []struct {
		path string
		rep  *eval.ChipBenchReport
	}{{basePath, &base}, {freshPath, &fresh}}
	for _, f := range files {
		for _, m := range eval.MissingSeqPairings(f.rep.Rows, union) {
			fmt.Printf("PAIR  %s: %s (partial bench run?)\n", f.path, m)
			pairErrs++
		}
	}

	// Sweep points re-measure the same cells at other GOMAXPROCS settings;
	// the stepper is bit-identical across host parallelism, so a sweep cycle
	// count disagreeing with the main row of the same file is drift.
	for _, f := range files {
		rows := make(map[string]eval.ChipBenchRow, len(f.rep.Rows))
		for _, r := range f.rep.Rows {
			rows[key(r)] = r
		}
		for _, p := range f.rep.Sweep {
			r, ok := rows[p.Bench+"/"+p.Variant]
			if ok && r.Cycles != p.Cycles {
				fmt.Printf("DRIFT %s: sweep %s/%s@%dproc cycles %d vs main row %d\n",
					f.path, p.Bench, p.Variant, p.GOMAXPROCS, p.Cycles, r.Cycles)
				drift++
			}
		}
	}

	// Host time and stepping speedups: informational only.
	for _, n := range names {
		b, inBase := baseRows[n]
		f, inFresh := freshRows[n]
		if !inBase || !inFresh || b.NsPerOp == 0 {
			continue
		}
		delta := (f.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		fmt.Printf("host  %-32s %11.0f -> %11.0f ns/op (%+.1f%%)\n", n, b.NsPerOp, f.NsPerOp, delta)
	}
	// Tile-skip coverage (the event-driven doze overlay's engagement):
	// deterministic per cell, but a coverage drop with identical cycles is a
	// lost host-time optimization, not a correctness failure — so flag
	// regressions informationally without failing the run.
	for _, n := range names {
		b, inBase := baseRows[n]
		f, inFresh := freshRows[n]
		if !inFresh || f.SkipCoverage == 0 && (!inBase || b.SkipCoverage == 0) {
			continue
		}
		line := fmt.Sprintf("doze  %-32s %5.1f%% tile-skip coverage", n, 100*f.SkipCoverage)
		if inBase && b.SkipCoverage > 0 {
			line += fmt.Sprintf(" (baseline %5.1f%%)", 100*b.SkipCoverage)
			if f.SkipCoverage < b.SkipCoverage-0.01 {
				line += "  REGRESSION"
			}
		}
		fmt.Println(line)
	}
	var speedKeys []string
	for n := range fresh.Speedups {
		speedKeys = append(speedKeys, n)
	}
	sort.Strings(speedKeys)
	for _, n := range speedKeys {
		line := fmt.Sprintf("speedup %-30s %.2fx", n, fresh.Speedups[n])
		if b, ok := base.Speedups[n]; ok {
			line += fmt.Sprintf(" (baseline %.2fx)", b)
		}
		fmt.Println(line)
	}
	for _, p := range fresh.Sweep {
		if p.Speedup > 0 {
			fmt.Printf("sweep   %-30s %d procs %.2fx\n", p.Bench+"/"+p.Variant, p.GOMAXPROCS, p.Speedup)
		}
	}

	if pairErrs > 0 {
		fmt.Fprintf(os.Stderr, "bench-compare: %d unpaired chip-bench row(s) — partial run is not a valid baseline\n", pairErrs)
	}
	if drift > 0 {
		fmt.Fprintf(os.Stderr, "bench-compare: %d chip-bench cell(s) drifted in simulated cycles\n", drift)
	}
	if drift > 0 || pairErrs > 0 {
		os.Exit(1)
	}
}

func compareTable3(basePath, freshPath string) {
	var base, fresh baseline
	if err := load(basePath, &base); err != nil {
		fatal(err)
	}
	if err := load(freshPath, &fresh); err != nil {
		fatal(err)
	}

	baseRows := make(map[string]row, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[r.Name] = r
	}
	freshRows := make(map[string]row, len(fresh.Rows))
	for _, r := range fresh.Rows {
		freshRows[r.Name] = r
	}

	var names []string
	for n := range baseRows {
		names = append(names, n)
	}
	for n := range freshRows {
		if _, ok := baseRows[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	drift := 0
	for _, n := range names {
		b, inBase := baseRows[n]
		f, inFresh := freshRows[n]
		switch {
		case !inBase:
			fmt.Printf("DRIFT %-12s only in fresh run\n", n)
			drift++
		case !inFresh:
			fmt.Printf("DRIFT %-12s missing from fresh run\n", n)
			drift++
		case b != f:
			fmt.Printf("DRIFT %-12s cycles hand %d->%d tcc %d->%d alpha %d->%d\n",
				n, b.CyclesHand, f.CyclesHand, b.CyclesTCC, f.CyclesTCC, b.CyclesAlpha, f.CyclesAlpha)
			drift++
		}
	}
	if drift == 0 {
		fmt.Printf("simulated cycles: %d workloads identical\n", len(names))
	}

	// Host throughput: informational only.
	baseHost := make(map[string]host, len(base.Host))
	for _, h := range base.Host {
		baseHost[h.Workload] = h
	}
	for _, f := range fresh.Host {
		b, ok := baseHost[f.Workload]
		if !ok || b.HostNSPerSimCyc == 0 {
			continue
		}
		delta := (f.HostNSPerSimCyc - b.HostNSPerSimCyc) / b.HostNSPerSimCyc * 100
		fmt.Printf("host  %-12s %8.0f -> %8.0f ns/sim-cycle (%+.1f%%)\n",
			f.Workload, b.HostNSPerSimCyc, f.HostNSPerSimCyc, delta)
	}
	if base.SimCyclesPerSec > 0 && fresh.SimCyclesPerSec > 0 {
		delta := (fresh.SimCyclesPerSec - base.SimCyclesPerSec) / base.SimCyclesPerSec * 100
		fmt.Printf("host  %-12s %8.0f -> %8.0f sim-cycles/sec (%+.1f%%)\n",
			"TOTAL", base.SimCyclesPerSec, fresh.SimCyclesPerSec, delta)
	}

	if drift > 0 {
		fmt.Fprintf(os.Stderr, "bench-compare: %d workload(s) drifted in simulated cycles\n", drift)
		os.Exit(1)
	}
}
