// bench-compare diffs two BENCH_table3.json baselines (see scripts/bench.sh).
//
//	bench-compare baseline.json fresh.json
//
// Simulated cycle counts (CyclesHand, CyclesTCC, CyclesAlpha per workload)
// are deterministic: any drift between the two files — including a workload
// appearing or disappearing — is a regression and exits nonzero. Host
// throughput (wall time, ns per simulated cycle) varies by machine and load,
// so those deltas are reported but never fail the run.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type row struct {
	Name        string
	CyclesHand  int64
	CyclesTCC   int64
	CyclesAlpha int64
}

type host struct {
	Workload         string  `json:"workload"`
	SimCycles        int64   `json:"sim_cycles"`
	WallNS           int64   `json:"wall_ns"`
	HostNSPerSimCyc  float64 `json:"host_ns_per_sim_cycle"`
	SimCyclesPerSec_ float64 `json:"sim_cycles_per_sec"`
}

type baseline struct {
	Rows            []row   `json:"rows"`
	Host            []host  `json:"host"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

func load(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: %s baseline.json fresh.json\n", os.Args[0])
		os.Exit(2)
	}
	base, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-compare:", err)
		os.Exit(2)
	}
	fresh, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-compare:", err)
		os.Exit(2)
	}

	baseRows := make(map[string]row, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[r.Name] = r
	}
	freshRows := make(map[string]row, len(fresh.Rows))
	for _, r := range fresh.Rows {
		freshRows[r.Name] = r
	}

	var names []string
	for n := range baseRows {
		names = append(names, n)
	}
	for n := range freshRows {
		if _, ok := baseRows[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	drift := 0
	for _, n := range names {
		b, inBase := baseRows[n]
		f, inFresh := freshRows[n]
		switch {
		case !inBase:
			fmt.Printf("DRIFT %-12s only in fresh run\n", n)
			drift++
		case !inFresh:
			fmt.Printf("DRIFT %-12s missing from fresh run\n", n)
			drift++
		case b != f:
			fmt.Printf("DRIFT %-12s cycles hand %d->%d tcc %d->%d alpha %d->%d\n",
				n, b.CyclesHand, f.CyclesHand, b.CyclesTCC, f.CyclesTCC, b.CyclesAlpha, f.CyclesAlpha)
			drift++
		}
	}
	if drift == 0 {
		fmt.Printf("simulated cycles: %d workloads identical\n", len(names))
	}

	// Host throughput: informational only.
	baseHost := make(map[string]host, len(base.Host))
	for _, h := range base.Host {
		baseHost[h.Workload] = h
	}
	for _, f := range fresh.Host {
		b, ok := baseHost[f.Workload]
		if !ok || b.HostNSPerSimCyc == 0 {
			continue
		}
		delta := (f.HostNSPerSimCyc - b.HostNSPerSimCyc) / b.HostNSPerSimCyc * 100
		fmt.Printf("host  %-12s %8.0f -> %8.0f ns/sim-cycle (%+.1f%%)\n",
			f.Workload, b.HostNSPerSimCyc, f.HostNSPerSimCyc, delta)
	}
	if base.SimCyclesPerSec > 0 && fresh.SimCyclesPerSec > 0 {
		delta := (fresh.SimCyclesPerSec - base.SimCyclesPerSec) / base.SimCyclesPerSec * 100
		fmt.Printf("host  %-12s %8.0f -> %8.0f sim-cycles/sec (%+.1f%%)\n",
			"TOTAL", base.SimCyclesPerSec, fresh.SimCyclesPerSec, delta)
	}

	if drift > 0 {
		fmt.Fprintf(os.Stderr, "bench-compare: %d workload(s) drifted in simulated cycles\n", drift)
		os.Exit(1)
	}
}
