// Package trips holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation (see DESIGN.md's per-experiment
// index and EXPERIMENTS.md for measured-vs-paper results):
//
//	go test -bench=Table3 -benchmem        the 21-benchmark evaluation
//	go test -bench=Ablation                design-choice ablations
//	go test -bench=Fig                     figure reproductions
//
// Custom metrics: cycles (simulated machine cycles), IPC, speedup vs the
// Alpha-class baseline, and the Table 3 critical-path percentages.
package trips

import (
	"os"
	"runtime"
	"testing"
	"time"

	"trips/internal/area"
	"trips/internal/chip"
	"trips/internal/eval"
	"trips/internal/isa"
	"trips/internal/mem"
	"trips/internal/proc"
	"trips/internal/tcc"
	"trips/internal/workloads"
)

// BenchmarkTable3 regenerates the paper's full Table 3 — for each of the 21
// benchmarks it runs TRIPS compiled, TRIPS hand-optimized (with
// critical-path accounting), and the Alpha baseline — through the parallel
// evaluation harness, and reports host throughput. Run with -benchtime=1x
// for the CI smoke; set BENCH_TABLE3_JSON to a path to emit the
// machine-readable per-row report (the checked-in BENCH_table3.json).
func BenchmarkTable3(b *testing.B) {
	var rep *eval.Table3Report
	for i := 0; i < b.N; i++ {
		r, err := eval.Table3All(0)
		if err != nil {
			b.Fatal(err)
		}
		rep = r
	}
	b.ReportMetric(rep.SimCyclesPerSec, "sim-cycles/sec")
	if rep.TotalSimCycles > 0 {
		b.ReportMetric(float64(rep.TotalWallNS)/float64(rep.TotalSimCycles), "host-ns/sim-cycle")
	}
	b.ReportMetric(float64(rep.TotalSimCycles), "sim-cycles")
	if path := os.Getenv("BENCH_TABLE3_JSON"); path != "" {
		if err := eval.WriteBenchJSON(path, rep); err != nil {
			b.Fatal(err)
		}
	}
}

// runCycles is the ablation helper: simulated cycles for one configuration.
func runCycles(b *testing.B, name string, opt eval.TRIPSOptions, hand bool) float64 {
	c, _ := runCyclesCov(b, name, opt, hand)
	return c
}

// runCyclesCov additionally returns the tile-skip coverage — the fraction of
// per-tile ticks the event-driven doze overlay elided (0 under
// -noeventdriven or NoFastPath).
func runCyclesCov(b *testing.B, name string, opt eval.TRIPSOptions, hand bool) (float64, float64) {
	b.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	var cov float64
	for i := 0; i < b.N; i++ {
		r, err := eval.RunTRIPS(w.Build(hand), opt)
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.Cycles
		if total := r.TileTicks + r.TileSkips; total > 0 {
			cov = float64(r.TileSkips) / float64(total)
		}
	}
	return float64(cycles), cov
}

// BenchmarkAblationPlacement: naive vs greedy instruction placement
// (paper Section 7: "better scheduling to reduce hop-counts").
func BenchmarkAblationPlacement(b *testing.B) {
	for _, name := range []string{"matrix", "vadd", "conv"} {
		b.Run(name+"/naive", func(b *testing.B) {
			b.ReportMetric(runCycles(b, name, eval.TRIPSOptions{Mode: tcc.Hand, Placement: tcc.PlaceNaive}, true), "cycles")
		})
		b.Run(name+"/greedy", func(b *testing.B) {
			b.ReportMetric(runCycles(b, name, eval.TRIPSOptions{Mode: tcc.Hand, Placement: tcc.PlaceGreedy}, true), "cycles")
		})
	}
}

// BenchmarkAblationOPNBandwidth: one vs two operand-network channels
// (paper Section 7: "architectural extensions to TRIPS may include more
// operand network bandwidth").
func BenchmarkAblationOPNBandwidth(b *testing.B) {
	for _, name := range []string{"vadd", "conv", "dct8x8"} {
		b.Run(name+"/1ch", func(b *testing.B) {
			b.ReportMetric(runCycles(b, name, eval.TRIPSOptions{Mode: tcc.Hand, OPNChannels: 1}, true), "cycles")
		})
		b.Run(name+"/2ch", func(b *testing.B) {
			b.ReportMetric(runCycles(b, name, eval.TRIPSOptions{Mode: tcc.Hand, OPNChannels: 2}, true), "cycles")
		})
	}
}

// BenchmarkAblationOPNLatency: an extra cycle of OPN router latency
// (paper Section 5.3: the remote bypass paths were the hardest timing
// paths; "increasing the latency in cycles would have a significant effect
// on instruction throughput").
func BenchmarkAblationOPNLatency(b *testing.B) {
	for _, name := range []string{"matrix", "vadd"} {
		b.Run(name+"/1cycle", func(b *testing.B) {
			b.ReportMetric(runCycles(b, name, eval.TRIPSOptions{Mode: tcc.Hand}, true), "cycles")
		})
		b.Run(name+"/2cycle", func(b *testing.B) {
			b.ReportMetric(runCycles(b, name, eval.TRIPSOptions{Mode: tcc.Hand, SlowOPNRouter: true}, true), "cycles")
		})
	}
}

// BenchmarkAblationDependencePredictor: aggressive load issue vs stalling
// every load until prior stores complete (paper Section 3.5).
func BenchmarkAblationDependencePredictor(b *testing.B) {
	for _, name := range []string{"vadd", "256.bzip2"} {
		b.Run(name+"/aggressive", func(b *testing.B) {
			b.ReportMetric(runCycles(b, name, eval.TRIPSOptions{Mode: tcc.Hand}, true), "cycles")
		})
		b.Run(name+"/conservative", func(b *testing.B) {
			b.ReportMetric(runCycles(b, name, eval.TRIPSOptions{Mode: tcc.Hand, ConservativeLoads: true}, true), "cycles")
		})
	}
}

// BenchmarkAblationBlockSize: compiled (one TIR block per TRIPS block,
// naive placement) vs hand (if-converted hyperblocks, greedy placement) —
// the TCC-vs-hand gap of Table 3.
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, name := range []string{"cfar", "a2time01", "300.twolf"} {
		b.Run(name+"/compiled", func(b *testing.B) {
			b.ReportMetric(runCycles(b, name, eval.TRIPSOptions{Mode: tcc.Compiled}, false), "cycles")
		})
		b.Run(name+"/hand", func(b *testing.B) {
			b.ReportMetric(runCycles(b, name, eval.TRIPSOptions{Mode: tcc.Hand}, true), "cycles")
		})
	}
}

// BenchmarkFig1Encoding measures instruction encode/decode (Figure 1).
func BenchmarkFig1Encoding(b *testing.B) {
	in := isa.Inst{Op: isa.ADD, T0: isa.ToLeft(5), T1: isa.ToRight(9)}
	for i := 0; i < b.N; i++ {
		w, err := isa.EncodeInst(&in)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := isa.DecodeInst(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5bCommitPipeline runs the eight-block chain behind the
// paper's Figure 5b and reports the steady-state block completion rate.
func BenchmarkFigure5bCommitPipeline(b *testing.B) {
	var blocks []*isa.Block
	const n = 8
	for i := 0; i < n; i++ {
		addr := uint64(0x10000 + i*0x100)
		blk := &isa.Block{Addr: addr, Name: "b"}
		blk.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToLeft(0)}
		blk.Writes[0] = isa.WriteInst{Valid: true, GR: 8}
		if i < n-1 {
			blk.Insts = []isa.Inst{
				{Op: isa.ADDI, Imm: 1, T0: isa.ToWrite(0)},
				{Op: isa.BRO, Exit: 0, Offset: 2},
			}
		} else {
			blk.Reads[0].RT1 = isa.ToLeft(1)
			blk.Insts = []isa.Inst{
				{Op: isa.ADDI, Imm: 1, T0: isa.ToWrite(0)},
				{Op: isa.TLTI, Imm: 200, T0: isa.ToLeft(4)},
				{Op: isa.BRO, Pred: isa.PredOnTrue, Exit: 1, Offset: int32(-(int64(addr-0x10000) / isa.ChunkBytes))},
				{Op: isa.BRO, Pred: isa.PredOnFalse, Exit: 0, Offset: int32(-(int64(addr) / isa.ChunkBytes))},
				{Op: isa.MOV, T0: isa.ToPred(2), T1: isa.ToPred(3)},
			}
		}
		blocks = append(blocks, blk)
	}
	prog, err := proc.NewProgram(blocks[0].Addr, blocks)
	if err != nil {
		b.Fatal(err)
	}
	var perBlock float64
	var simCycles int64
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < b.N; i++ {
		m := mem.New()
		if err := prog.Image(m); err != nil {
			b.Fatal(err)
		}
		core, err := proc.NewCore(proc.Config{Program: prog, Mem: proc.NewFixedLatencyMem(m, 20)})
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Run()
		if err != nil {
			b.Fatal(err)
		}
		perBlock = float64(res.Cycles) / float64(res.CommittedBlocks)
		simCycles += res.Cycles
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	b.ReportAllocs()
	b.ReportMetric(perBlock, "cycles/block")
	if simCycles > 0 {
		// The alloc regression gate for the event wheel, pooled operand
		// messages and pooled memory requests, normalized per simulated cycle.
		b.ReportMetric(float64(wall.Nanoseconds())/float64(simCycles), "host-ns/sim-cycle")
		b.ReportMetric(float64(simCycles)/wall.Seconds(), "sim-cycles/sec")
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(simCycles), "allocs/sim-cycle")
	}
}

// BenchmarkTable1 and BenchmarkTable2 regenerate the static tables
// (formatting only — the content is checked in internal/area's tests).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(area.FormatTable1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(area.FormatTable2()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig6Floorplan renders the floorplan.
func BenchmarkFig6Floorplan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(area.Floorplan()) == 0 {
			b.Fatal("empty floorplan")
		}
	}
}

// BenchmarkAlphaBaseline measures the baseline simulator alone.
func BenchmarkAlphaBaseline(b *testing.B) {
	w, err := workloads.ByName("matrix")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunAlpha(w.Build(false)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChipDualCore runs a workload on both processor cores
// simultaneously through the partitioned NUCA memory system — the full
// Figure 2 chip. The default variant uses the two-phase parallel step and
// clock-warping; serial-nowarp is the one-thread, tick-every-cycle
// baseline. Simulated cycle counts must be identical across variants.
func BenchmarkChipDualCore(b *testing.B) {
	for _, cfg := range []struct {
		name               string
		noWarp, noParallel bool
		stepping           chip.Stepping
	}{
		{"parallel-warp", false, false, chip.StepLag},
		{"serial-nowarp", true, true, chip.StepLag},
		{"seq-warp", false, false, chip.StepSeq},
		{"seq-nowarp", true, true, chip.StepSeq},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportMetric(float64(runDualCoreChip(b, cfg.noWarp, cfg.noParallel, cfg.stepping)), "cycles")
		})
	}
}

func runDualCoreChip(b *testing.B, noWarp, noParallel bool, stepping chip.Stepping) int64 {
	b.Helper()
	w, err := workloads.ByName("vadd")
	if err != nil {
		b.Fatal(err)
	}
	var cyc int64
	for i := 0; i < b.N; i++ {
		spec0 := w.Build(true)
		spec1 := w.Build(true)
		prog0, meta0, err := tcc.Compile(spec0.F, tcc.Options{Mode: tcc.Hand, BaseAddr: 0x10000})
		if err != nil {
			b.Fatal(err)
		}
		prog1, meta1, err := tcc.Compile(spec1.F, tcc.Options{Mode: tcc.Hand, BaseAddr: 0x40000})
		if err != nil {
			b.Fatal(err)
		}
		backing := mem.New()
		spec0.SetupMem(backing)
		c, err := chip.New(chip.Config{
			Programs:   [2]*proc.Program{prog0, prog1},
			Backing:    backing,
			Partition:  true,
			NoWarp:     noWarp,
			NoParallel: noParallel,
			Stepping:   stepping,
		})
		if err != nil {
			b.Fatal(err)
		}
		for v, val := range spec0.Init {
			if gr, ok := meta0.RegOf[v]; ok {
				c.Cores[0].SetRegister(0, gr, val)
			}
		}
		for v, val := range spec1.Init {
			if gr, ok := meta1.RegOf[v]; ok {
				c.Cores[1].SetRegister(0, gr, val)
			}
		}
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
		cyc = c.Cycle()
	}
	return cyc
}

// BenchmarkChipDMAStream measures the drain-deadline warping win on a
// DMA/idle-heavy phase: a short program retires on core 0, then a DMA
// controller streams 64KB line-by-line through the OCN (port -> MT -> SDC
// round trips) while both cores sit idle. With warping, the chip clock
// jumps across every solo-transit leg and SDRAM access; the nowarp variant
// ticks all of them. Simulated cycles must be identical; the host-time gap
// is the win. The warp-coverage metric reports the fraction of simulated
// cycles skipped.
func BenchmarkChipDMAStream(b *testing.B) {
	const bytes = 64 << 10
	mkBlocks := func(base uint64, iters int) *proc.Program {
		var blocks []*isa.Block
		for i := 0; i < iters; i++ {
			addr := base + uint64(i)*0x100
			blk := &isa.Block{Addr: addr, Name: "count"}
			blk.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToLeft(0)}
			blk.Writes[0] = isa.WriteInst{Valid: true, GR: 8}
			off := int32(2)
			if i == iters-1 {
				off = int32(-(int64(addr) / isa.ChunkBytes))
			}
			blk.Insts = []isa.Inst{
				{Op: isa.ADDI, Imm: 1, T0: isa.ToWrite(0)},
				{Op: isa.BRO, Exit: 0, Offset: off},
			}
			blocks = append(blocks, blk)
		}
		p, err := proc.NewProgram(base, blocks)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	var rows []eval.ChipBenchRow
	for _, cfg := range []struct {
		name     string
		noWarp   bool
		noDoze   bool
		stepping chip.Stepping
	}{
		{"warp", false, false, chip.StepLag},
		{"nowarp", true, false, chip.StepLag},
		{"nowarp-nodoze", true, true, chip.StepLag},
		{"seq-warp", false, false, chip.StepSeq},
		{"seq-nowarp", true, false, chip.StepSeq},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var cyc, warped int64
			var cov float64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				backing := mem.New()
				for j := 0; j < bytes/8; j++ {
					backing.Write(0x700000+uint64(j)*8, 8, uint64(j+1))
				}
				c, err := chip.New(chip.Config{
					Programs:      [2]*proc.Program{mkBlocks(0x100000, 2), nil},
					Backing:       backing,
					MaxCycles:     50_000_000,
					NoWarp:        cfg.noWarp,
					NoEventDriven: cfg.noDoze,
					Stepping:      cfg.stepping,
				})
				if err != nil {
					b.Fatal(err)
				}
				c.DMA[0].Program(0x700000, 0x760000, bytes)
				if err := c.Run(); err != nil {
					b.Fatal(err)
				}
				if c.DMA[0].Moved != bytes {
					b.Fatalf("dma moved %d bytes", c.DMA[0].Moved)
				}
				cyc = c.Cycle()
				warped = c.WarpedCycles
				if ticks, skips, _ := c.TileActivity(); ticks+skips > 0 {
					cov = float64(skips) / float64(ticks+skips)
				}
			}
			rows = append(rows, eval.ChipBenchRow{
				Bench: "ChipDMAStream", Variant: cfg.name,
				NsPerOp: float64(time.Since(start).Nanoseconds()) / float64(b.N),
				Cycles:  cyc, SkipCoverage: cov,
			})
			b.ReportMetric(float64(cyc), "cycles")
			b.ReportMetric(100*float64(warped)/float64(cyc), "warp-coverage-%")
			b.ReportMetric(100*cov, "tile-skip-%")
		})
	}
	if path := os.Getenv("BENCH_CHIP_JSON"); path != "" {
		// In sweep mode (scripts/bench.sh sweep) the run was pinned to a
		// specific GOMAXPROCS; record it as a scaling-series point instead of
		// overwriting the main rows measured at default parallelism.
		if os.Getenv("BENCH_CHIP_SWEEP") != "" {
			if err := eval.MergeChipSweepJSON(path, runtime.GOMAXPROCS(0), rows); err != nil {
				b.Fatal(err)
			}
		} else if err := eval.MergeChipBenchJSON(path, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNUCAvsPerfectL2 contrasts the paper's perfect-L2 normalization
// with the full secondary memory system behind one core. The nowarp
// variants re-run each configuration with clock-warping disabled — the
// simulated cycle counts must match, and the host-time gap is the win from
// fast-forwarding SDRAM-latency stalls. vadd keeps eight blocks of
// speculative work in flight, so it rarely quiesces; mcf's pointer chase
// serializes its misses and spends most of its cycles in warpable waits.
func BenchmarkNUCAvsPerfectL2(b *testing.B) {
	var rows []eval.ChipBenchRow
	for _, cfg := range []struct {
		name     string
		workload string
		nuca     bool
		nowarp   bool
		seq      bool
		nodoze   bool
	}{
		{"perfect-l2", "vadd", false, false, false, false},
		{"perfect-l2-nowarp", "vadd", false, true, false, false},
		{"nuca", "vadd", true, false, false, false},
		{"nuca-nowarp", "vadd", true, true, false, false},
		{"nuca-nodoze", "vadd", true, false, false, true},
		{"nuca-seq", "vadd", true, false, true, false},
		{"mcf-nuca", "181.mcf", true, false, false, false},
		{"mcf-nuca-nowarp", "181.mcf", true, true, false, false},
		{"mcf-nuca-nodoze", "181.mcf", true, false, false, true},
		{"mcf-nuca-seq", "181.mcf", true, false, true, false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			start := time.Now()
			cyc, cov := runCyclesCov(b, cfg.workload, eval.TRIPSOptions{Mode: tcc.Hand, UseNUCA: cfg.nuca, NoWarp: cfg.nowarp, SeqStep: cfg.seq, NoEventDriven: cfg.nodoze}, true)
			if cfg.nuca {
				rows = append(rows, eval.ChipBenchRow{
					Bench: "NUCAvsPerfectL2", Variant: cfg.name,
					NsPerOp: float64(time.Since(start).Nanoseconds()) / float64(b.N),
					Cycles:  int64(cyc), SkipCoverage: cov,
				})
			}
			b.ReportMetric(cyc, "cycles")
			b.ReportMetric(100*cov, "tile-skip-%")
		})
	}
	if path := os.Getenv("BENCH_CHIP_JSON"); path != "" {
		if os.Getenv("BENCH_CHIP_SWEEP") != "" {
			if err := eval.MergeChipSweepJSON(path, runtime.GOMAXPROCS(0), rows); err != nil {
				b.Fatal(err)
			}
		} else if err := eval.MergeChipBenchJSON(path, rows); err != nil {
			b.Fatal(err)
		}
	}
}
